//! Pre-decoded instruction stream — the interpreter's hot-path form.
//!
//! [`crate::inst::Inst`] is the loadable, inspectable format: some variants
//! carry `Vec<Reg>` operand lists and `RegImm` sums that would force the
//! dispatch loop to clone or re-match on every execution.  At load time
//! ([`crate::Machine::new`]) every function is decoded once into [`DInst`],
//! a flat `Copy` form:
//!
//! - operand lists live in one shared arena ([`DecodedProgram::args`]) and
//!   instructions carry an [`ArgSpan`] (offset + length) into it;
//! - `RegImm` operands are split into distinct register/immediate variants
//!   so the loop never re-discriminates them;
//! - representation facts that are fixed at load time (the pointer tag for
//!   an `AllocFill` rep, the closure role's tag and encoded code word) are
//!   resolved here, off the hot path.
//!
//! The interpreter then fetches instructions by value: zero per-step heap
//! allocation and no borrows of the program during execution.

use crate::error::{VmError, VmErrorKind};
use crate::heap::Word;
use crate::inst::{BinOp, CmpOp, CodeProgram, Inst, InstClass, Reg, RegImm, RepVmOp};
use sxr_ir::rep::{RepId, RepKind, RepRegistry};

/// A span into the shared operand arena ([`DecodedProgram::args`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArgSpan {
    /// First operand's index in the arena.
    pub off: u32,
    /// Number of operands.
    pub len: u16,
}

/// One pre-decoded instruction.  Everything is `Copy`; executing a `DInst`
/// never touches the allocator.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DInst {
    Const {
        d: Reg,
        imm: Word,
    },
    Pool {
        d: Reg,
        idx: u32,
    },
    Move {
        d: Reg,
        s: Reg,
    },
    Bin {
        op: BinOp,
        d: Reg,
        a: Reg,
        b: Reg,
    },
    BinI {
        op: BinOp,
        d: Reg,
        a: Reg,
        imm: i64,
    },
    LoadD {
        d: Reg,
        p: Reg,
        disp: i64,
    },
    LoadX {
        d: Reg,
        p: Reg,
        x: Reg,
        disp: i64,
    },
    StoreD {
        p: Reg,
        disp: i64,
        s: Reg,
    },
    StoreX {
        p: Reg,
        x: Reg,
        disp: i64,
        s: Reg,
    },
    /// `AllocFill` with a static length; `tag` pre-resolved from the rep.
    AllocImm {
        d: Reg,
        len: u32,
        fill: Reg,
        rep: u16,
        tag: u64,
    },
    /// `AllocFill` with the length in a register.
    AllocReg {
        d: Reg,
        len: Reg,
        fill: Reg,
        rep: u16,
        tag: u64,
    },
    Jump {
        t: u32,
    },
    JumpCmpRR {
        op: CmpOp,
        a: Reg,
        b: Reg,
        t: u32,
    },
    JumpCmpRI {
        op: CmpOp,
        a: Reg,
        imm: i64,
        t: u32,
    },
    GlobalGet {
        d: Reg,
        g: u32,
    },
    GlobalSet {
        g: u32,
        s: Reg,
    },
    /// `tag` and `code` (the encoded fixnum holding the function id) are
    /// resolved at decode time from the closure/fixnum roles.
    MakeClosure {
        d: Reg,
        free: ArgSpan,
        tag: u64,
        code: Word,
    },
    ClosureSet {
        clo: Reg,
        idx: u32,
        val: Reg,
    },
    Call {
        d: Reg,
        f: Reg,
        args: ArgSpan,
    },
    CallKnown {
        d: Reg,
        f: u32,
        clo: Reg,
        args: ArgSpan,
    },
    TailCall {
        f: Reg,
        args: ArgSpan,
    },
    TailCallKnown {
        f: u32,
        clo: Reg,
        args: ArgSpan,
    },
    Ret {
        s: Reg,
    },
    Rep {
        op: RepVmOp,
        d: Reg,
        args: ArgSpan,
    },
    Intern {
        d: Reg,
        s: Reg,
    },
    WriteChar {
        s: Reg,
    },
    ErrorOp {
        s: Reg,
    },
    PushHandler {
        h: Reg,
        d: Reg,
        t: u32,
    },
    PopHandler,
    RaiseOp {
        s: Reg,
    },
    ResetCounters,
}

impl DInst {
    /// The reporting class (mirrors [`Inst::class`]).
    pub fn class(self) -> InstClass {
        match self {
            DInst::Const { .. } | DInst::Move { .. } | DInst::Bin { .. } | DInst::BinI { .. } => {
                InstClass::Arith
            }
            DInst::LoadD { .. }
            | DInst::LoadX { .. }
            | DInst::StoreD { .. }
            | DInst::StoreX { .. }
            | DInst::ClosureSet { .. } => InstClass::Memory,
            DInst::Jump { .. } | DInst::JumpCmpRR { .. } | DInst::JumpCmpRI { .. } => {
                InstClass::Branch
            }
            DInst::Call { .. }
            | DInst::CallKnown { .. }
            | DInst::TailCall { .. }
            | DInst::TailCallKnown { .. }
            | DInst::Ret { .. } => InstClass::Call,
            DInst::AllocImm { .. } | DInst::AllocReg { .. } | DInst::MakeClosure { .. } => {
                InstClass::Alloc
            }
            DInst::Rep { .. } => InstClass::RepGeneric,
            DInst::Pool { .. }
            | DInst::GlobalGet { .. }
            | DInst::GlobalSet { .. }
            | DInst::Intern { .. }
            | DInst::WriteChar { .. }
            | DInst::ErrorOp { .. }
            | DInst::PushHandler { .. }
            | DInst::PopHandler
            | DInst::RaiseOp { .. }
            | DInst::ResetCounters => InstClass::Misc,
        }
    }
}

/// One function's hot-path data: the decoded code plus the frame facts the
/// call path needs without chasing the loadable program.
#[derive(Debug)]
pub(crate) struct DecodedFun {
    pub arity: usize,
    pub variadic: bool,
    pub nregs: usize,
    pub insts: Vec<DInst>,
}

/// The whole program in pre-decoded form.
#[derive(Debug)]
pub(crate) struct DecodedProgram {
    pub funs: Vec<DecodedFun>,
    /// Shared operand arena; indexed via [`ArgSpan`].
    pub args: Vec<Reg>,
}

/// Resolves the pointer tag of `rep`, or reports which instruction wanted
/// it to be a pointer.
fn pointer_tag(registry: &RepRegistry, rep: RepId, what: &str) -> Result<u64, VmError> {
    match registry.info(rep).kind {
        RepKind::Pointer { tag, .. } => Ok(tag),
        RepKind::Immediate { .. } => Err(VmError::new(
            VmErrorKind::BadProgram,
            format!(
                "{what} of immediate representation `{}`",
                registry.info(rep).name
            ),
        )),
    }
}

/// Number of operands each generic representation operation consumes from
/// its argument list (the machine indexes the arena unchecked by this
/// count, so decode validates it up front).
pub(crate) fn rep_op_arity(op: RepVmOp) -> usize {
    match op {
        RepVmOp::MakeImm => 4,
        RepVmOp::MakePtr => 3,
        RepVmOp::Provide | RepVmOp::Inject | RepVmOp::Project | RepVmOp::Test | RepVmOp::Len => 2,
        RepVmOp::Alloc | RepVmOp::Ref => 3,
        RepVmOp::Set => 4,
    }
}

/// Structural validation of one loadable instruction: every register field
/// is inside the function's frame, every pool/global/function/`RepId` index
/// is in bounds, and generic rep operations carry the operand count the
/// interpreter will read.  These used to be debug-only assumptions (release
/// builds would panic on out-of-range indexing); they are hard load errors
/// in all builds now, so the checked interpreter loop never panics on
/// adversarial programs.
fn validate_inst(
    program: &CodeProgram,
    registry: &RepRegistry,
    fun_name: &str,
    nregs: usize,
    inst: &Inst,
) -> Result<(), VmError> {
    let bad = |what: String| {
        Err(VmError::new(
            VmErrorKind::BadProgram,
            format!("`{fun_name}`: {what}"),
        ))
    };
    let reg = |r: Reg| -> Result<(), VmError> {
        if (r as usize) < nregs {
            Ok(())
        } else {
            bad(format!("register r{r} out of range (frame has {nregs})"))
        }
    };
    let regs = |list: &[Reg]| -> Result<(), VmError> { list.iter().copied().try_for_each(&reg) };
    let reg_imm = |ri: &RegImm| -> Result<(), VmError> {
        match ri {
            RegImm::Reg(r) => reg(*r),
            RegImm::Imm(_) => Ok(()),
        }
    };
    let pool = |idx: u32| -> Result<(), VmError> {
        if (idx as usize) < program.pool.len() {
            Ok(())
        } else {
            bad(format!(
                "pool index {idx} out of range (pool has {})",
                program.pool.len()
            ))
        }
    };
    let global = |g: u32| -> Result<(), VmError> {
        if (g as usize) < program.nglobals {
            Ok(())
        } else {
            bad(format!(
                "global {g} out of range ({} globals)",
                program.nglobals
            ))
        }
    };
    let fnid = |f: u32| -> Result<(), VmError> {
        if (f as usize) < program.funs.len() {
            Ok(())
        } else {
            bad(format!(
                "function id {f} out of range ({} functions)",
                program.funs.len()
            ))
        }
    };
    match inst {
        Inst::Const { d, .. } => reg(*d),
        Inst::Pool { d, idx } => reg(*d).and_then(|()| pool(*idx)),
        Inst::Move { d, s } => reg(*d).and_then(|()| reg(*s)),
        Inst::Bin { d, a, b, .. } => regs(&[*d, *a, *b]),
        Inst::BinI { d, a, .. } => regs(&[*d, *a]),
        Inst::LoadD { d, p, .. } => regs(&[*d, *p]),
        Inst::LoadX { d, p, x, .. } => regs(&[*d, *p, *x]),
        Inst::StoreD { p, s, .. } => regs(&[*p, *s]),
        Inst::StoreX { p, x, s, .. } => regs(&[*p, *x, *s]),
        Inst::AllocFill { d, len, fill, rep } => {
            reg(*d)?;
            reg_imm(len)?;
            reg(*fill)?;
            if (*rep as usize) >= registry.len() {
                return bad(format!("alloc of unknown representation id {rep}"));
            }
            Ok(())
        }
        Inst::Jump { .. } => Ok(()),
        Inst::JumpCmp { a, b, .. } => reg(*a).and_then(|()| reg_imm(b)),
        Inst::GlobalGet { d, g } => reg(*d).and_then(|()| global(*g)),
        Inst::GlobalSet { g, s } => reg(*s).and_then(|()| global(*g)),
        Inst::MakeClosure { d, f, free } => {
            reg(*d)?;
            fnid(*f)?;
            regs(free)
        }
        Inst::ClosureSet { clo, val, .. } => regs(&[*clo, *val]),
        Inst::Call { d, f, args } => {
            regs(&[*d, *f])?;
            regs(args)
        }
        Inst::CallKnown { d, f, clo, args } => {
            regs(&[*d, *clo])?;
            fnid(*f)?;
            regs(args)
        }
        Inst::TailCall { f, args } => {
            reg(*f)?;
            regs(args)
        }
        Inst::TailCallKnown { f, clo, args } => {
            reg(*clo)?;
            fnid(*f)?;
            regs(args)
        }
        Inst::Ret { s } => reg(*s),
        Inst::Rep { op, d, args } => {
            reg(*d)?;
            regs(args)?;
            let need = rep_op_arity(*op);
            if args.len() != need {
                return bad(format!(
                    "rep operation {op:?} takes {need} operands, got {}",
                    args.len()
                ));
            }
            Ok(())
        }
        Inst::Intern { d, s } => regs(&[*d, *s]),
        Inst::WriteChar { s } | Inst::ErrorOp { s } | Inst::RaiseOp { s } => reg(*s),
        Inst::PushHandler { h, d, .. } => regs(&[*h, *d]),
        Inst::PopHandler | Inst::ResetCounters => Ok(()),
    }
}

/// Decodes `program` against its (load-time) registry.  `closure_tag` and
/// the fixnum role come from the machine's role cache; they are fixed for
/// the life of the machine.
///
/// # Errors
///
/// Returns [`VmErrorKind::BadProgram`] for instructions that could never
/// execute successfully: an `AllocFill` of an immediate representation or
/// with a negative static length, any out-of-range register, pool, global,
/// function, or representation index, or a generic rep operation with the
/// wrong operand count (see [`validate_inst`]).
pub(crate) fn decode_program(
    program: &CodeProgram,
    registry: &RepRegistry,
    closure_tag: u64,
    fixnum: RepId,
) -> Result<DecodedProgram, VmError> {
    let mut args: Vec<Reg> = Vec::new();
    let mut span = |list: &[Reg]| -> ArgSpan {
        let off = args.len() as u32;
        args.extend_from_slice(list);
        ArgSpan {
            off,
            len: list.len() as u16,
        }
    };
    if (program.main as usize) >= program.funs.len() {
        return Err(VmError::new(
            VmErrorKind::BadProgram,
            format!("main function id {} out of range", program.main),
        ));
    }
    let mut funs = Vec::with_capacity(program.funs.len());
    for fun in &program.funs {
        // The frame must hold the closure register plus every parameter
        // (and the rest-list register of a variadic function): frame
        // construction writes them unconditionally.
        let min_regs = 1 + fun.arity + usize::from(fun.variadic);
        if fun.nregs < min_regs {
            return Err(VmError::new(
                VmErrorKind::BadProgram,
                format!(
                    "`{}`: frame of {} registers cannot hold {} parameters",
                    fun.name, fun.nregs, min_regs
                ),
            ));
        }
        let mut insts = Vec::with_capacity(fun.insts.len());
        for inst in &fun.insts {
            validate_inst(program, registry, &fun.name, fun.nregs, inst)?;
            let d = match inst {
                Inst::Const { d, imm } => DInst::Const { d: *d, imm: *imm },
                Inst::Pool { d, idx } => DInst::Pool { d: *d, idx: *idx },
                Inst::Move { d, s } => DInst::Move { d: *d, s: *s },
                Inst::Bin { op, d, a, b } => DInst::Bin {
                    op: *op,
                    d: *d,
                    a: *a,
                    b: *b,
                },
                Inst::BinI { op, d, a, imm } => DInst::BinI {
                    op: *op,
                    d: *d,
                    a: *a,
                    imm: *imm as i64,
                },
                Inst::LoadD { d, p, disp } => DInst::LoadD {
                    d: *d,
                    p: *p,
                    disp: *disp as i64,
                },
                Inst::LoadX { d, p, x, disp } => DInst::LoadX {
                    d: *d,
                    p: *p,
                    x: *x,
                    disp: *disp as i64,
                },
                Inst::StoreD { p, disp, s } => DInst::StoreD {
                    p: *p,
                    disp: *disp as i64,
                    s: *s,
                },
                Inst::StoreX { p, x, disp, s } => DInst::StoreX {
                    p: *p,
                    x: *x,
                    disp: *disp as i64,
                    s: *s,
                },
                Inst::AllocFill { d, len, fill, rep } => {
                    let tag = pointer_tag(registry, *rep, "alloc")?;
                    match len {
                        RegImm::Imm(n) => {
                            if *n < 0 {
                                return Err(VmError::new(
                                    VmErrorKind::BadProgram,
                                    format!("`{}`: allocation of {n} fields", fun.name),
                                ));
                            }
                            DInst::AllocImm {
                                d: *d,
                                len: *n as u32,
                                fill: *fill,
                                rep: *rep as u16,
                                tag,
                            }
                        }
                        RegImm::Reg(r) => DInst::AllocReg {
                            d: *d,
                            len: *r,
                            fill: *fill,
                            rep: *rep as u16,
                            tag,
                        },
                    }
                }
                Inst::Jump { t } => DInst::Jump { t: *t },
                Inst::JumpCmp { op, a, b, t } => match b {
                    RegImm::Reg(r) => DInst::JumpCmpRR {
                        op: *op,
                        a: *a,
                        b: *r,
                        t: *t,
                    },
                    RegImm::Imm(i) => DInst::JumpCmpRI {
                        op: *op,
                        a: *a,
                        imm: *i as i64,
                        t: *t,
                    },
                },
                Inst::GlobalGet { d, g } => DInst::GlobalGet { d: *d, g: *g },
                Inst::GlobalSet { g, s } => DInst::GlobalSet { g: *g, s: *s },
                Inst::MakeClosure { d, f, free } => DInst::MakeClosure {
                    d: *d,
                    free: span(free),
                    tag: closure_tag,
                    code: registry.encode_immediate(fixnum, *f as i64),
                },
                Inst::ClosureSet { clo, idx, val } => DInst::ClosureSet {
                    clo: *clo,
                    idx: *idx,
                    val: *val,
                },
                Inst::Call { d, f, args } => DInst::Call {
                    d: *d,
                    f: *f,
                    args: span(args),
                },
                Inst::CallKnown { d, f, clo, args } => DInst::CallKnown {
                    d: *d,
                    f: *f,
                    clo: *clo,
                    args: span(args),
                },
                Inst::TailCall { f, args } => DInst::TailCall {
                    f: *f,
                    args: span(args),
                },
                Inst::TailCallKnown { f, clo, args } => DInst::TailCallKnown {
                    f: *f,
                    clo: *clo,
                    args: span(args),
                },
                Inst::Ret { s } => DInst::Ret { s: *s },
                Inst::Rep { op, d, args } => DInst::Rep {
                    op: *op,
                    d: *d,
                    args: span(args),
                },
                Inst::Intern { d, s } => DInst::Intern { d: *d, s: *s },
                Inst::WriteChar { s } => DInst::WriteChar { s: *s },
                Inst::ErrorOp { s } => DInst::ErrorOp { s: *s },
                Inst::PushHandler { h, d, t } => DInst::PushHandler {
                    h: *h,
                    d: *d,
                    t: *t,
                },
                Inst::PopHandler => DInst::PopHandler,
                Inst::RaiseOp { s } => DInst::RaiseOp { s: *s },
                Inst::ResetCounters => DInst::ResetCounters,
            };
            insts.push(d);
        }
        funs.push(DecodedFun {
            arity: fun.arity,
            variadic: fun.variadic,
            nregs: fun.nregs,
            insts,
        });
    }
    Ok(DecodedProgram { funs, args })
}
