//! Regression tests for the load-time structural checks that used to be
//! `debug_assert`s (or release-build panics): every one of these programs
//! must be refused with a structured `BadProgram` error in *all* build
//! profiles, before a single instruction runs.

use sxr_ir::rep::RepRegistry;
use sxr_vm::{
    CodeFun, CodeProgram, Heap, Inst, Machine, MachineConfig, RegImm, RepVmOp, VmErrorKind,
};

fn boot_registry() -> RepRegistry {
    let mut reg = RepRegistry::new();
    let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
    let bo = reg.intern_immediate("boolean", 8, 0b010, 8).unwrap();
    let un = reg
        .intern_immediate("unspecified", 8, 0b0001_0010, 8)
        .unwrap();
    let clo = reg.intern_pointer("closure", 0b111, false).unwrap();
    for (role, id) in [
        ("fixnum", fx),
        ("boolean", bo),
        ("unspecified", un),
        ("closure", clo),
    ] {
        reg.provide_role(role, id).unwrap();
    }
    reg
}

fn fun(nregs: usize, insts: Vec<Inst>) -> CodeFun {
    CodeFun {
        name: "main".into(),
        arity: 0,
        variadic: false,
        nregs,
        free_count: 0,
        insts,
        ptr_map: vec![true; nregs],
        free_ptr_map: vec![],
    }
}

fn program(funs: Vec<CodeFun>) -> CodeProgram {
    CodeProgram {
        funs,
        main: 0,
        pool: vec![],
        nglobals: 1,
        global_names: vec!["g0".into()],
        registry: boot_registry(),
    }
}

#[track_caller]
fn assert_load_rejected(prog: CodeProgram, needle: &str) {
    // No verifier installed: these are the *decoder's* own hard checks.
    let err = Machine::new(prog, MachineConfig::default()).unwrap_err();
    assert_eq!(err.kind, VmErrorKind::BadProgram, "{}", err.message);
    assert!(
        err.message.contains(needle),
        "message {:?} lacks {:?}",
        err.message,
        needle
    );
}

#[test]
fn register_field_out_of_bounds() {
    assert_load_rejected(
        program(vec![fun(
            2,
            vec![Inst::Move { d: 1, s: 9 }, Inst::Ret { s: 1 }],
        )]),
        "register",
    );
}

#[test]
fn pool_index_out_of_bounds() {
    assert_load_rejected(
        program(vec![fun(
            2,
            vec![Inst::Pool { d: 1, idx: 3 }, Inst::Ret { s: 1 }],
        )]),
        "pool",
    );
}

#[test]
fn global_index_out_of_bounds() {
    assert_load_rejected(
        program(vec![fun(
            2,
            vec![Inst::GlobalGet { d: 1, g: 44 }, Inst::Ret { s: 1 }],
        )]),
        "global",
    );
}

#[test]
fn function_id_out_of_bounds() {
    assert_load_rejected(
        program(vec![fun(
            2,
            vec![
                Inst::CallKnown {
                    d: 1,
                    f: 12,
                    clo: 0,
                    args: vec![],
                },
                Inst::Ret { s: 1 },
            ],
        )]),
        "function",
    );
}

#[test]
fn alloc_of_unknown_rep_is_rejected_not_a_panic() {
    // A rep id past the registry used to reach `registry.info`'s indexing
    // panic before any structured check.
    assert_load_rejected(
        program(vec![fun(
            2,
            vec![
                Inst::Const { d: 1, imm: 0 },
                Inst::AllocFill {
                    d: 1,
                    len: RegImm::Imm(1),
                    fill: 1,
                    rep: 999,
                },
                Inst::Ret { s: 1 },
            ],
        )]),
        "representation",
    );
}

#[test]
fn rep_operand_count_is_checked_at_load() {
    assert_load_rejected(
        program(vec![fun(
            2,
            vec![
                Inst::Rep {
                    op: RepVmOp::Set,
                    d: 1,
                    args: vec![0, 0], // Set takes 4
                },
                Inst::Ret { s: 1 },
            ],
        )]),
        "operand",
    );
}

#[test]
fn entry_function_id_out_of_bounds() {
    let mut prog = program(vec![fun(1, vec![Inst::Ret { s: 0 }])]);
    prog.main = 5;
    assert_load_rejected(prog, "main function id");
}

#[test]
fn frame_too_small_for_parameters() {
    let mut f = fun(1, vec![Inst::Ret { s: 0 }]);
    f.arity = 2; // needs closure + 2 params = 3 registers
    assert_load_rejected(program(vec![f]), "register");
}

#[test]
#[should_panic(expected = "caller must ensure space")]
fn heap_alloc_without_reserved_space_panics_in_all_builds() {
    // `Heap::new` rounds capacity up to 64 words; 100 fields cannot fit.
    let mut heap = Heap::new(4);
    heap.alloc(100, 0, 0);
}
