//! Error-taxonomy tests: every [`VmErrorKind`] variant is constructible,
//! carries a stable unique label, and — where the machine can be driven to
//! it — actually comes out of execution as a structured, recoverable error
//! rather than a panic.  The out-of-memory variants additionally
//! distinguish a request that could never fit ([`OomPhase::Alloc`]) from a
//! collection that ran and reclaimed too little ([`OomPhase::Collect`]).

use sxr_ir::rep::RepRegistry;
use sxr_vm::{
    BinOp, CodeFun, CodeProgram, FaultPlan, Inst, Machine, MachineConfig, OomPhase, RegImm,
    VmError, VmErrorKind,
};

/// The classic tagging scheme, built the way a library would.
struct Reg {
    reg: RepRegistry,
    fx: u32,
    pair: u32,
}

fn classic_registry() -> Reg {
    let mut reg = RepRegistry::new();
    let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
    let bo = reg.intern_immediate("boolean", 8, 0b0000_0010, 8).unwrap();
    let un = reg
        .intern_immediate("unspecified", 8, 0b0011_0010, 8)
        .unwrap();
    let pair = reg.intern_pointer("pair", 0b001, false).unwrap();
    let clo = reg.intern_pointer("closure", 0b111, false).unwrap();
    for (role, id) in [
        ("fixnum", fx),
        ("boolean", bo),
        ("unspecified", un),
        ("pair", pair),
        ("closure", clo),
    ] {
        reg.provide_role(role, id).unwrap();
    }
    Reg { reg, fx, pair }
}

fn fun(name: &str, arity: usize, nregs: usize, insts: Vec<Inst>) -> CodeFun {
    CodeFun {
        name: name.into(),
        arity,
        variadic: false,
        nregs,
        free_count: 0,
        insts,
        ptr_map: vec![true; nregs],
        free_ptr_map: vec![],
    }
}

fn program(reg: RepRegistry, funs: Vec<CodeFun>) -> CodeProgram {
    CodeProgram {
        funs,
        main: 0,
        pool: vec![],
        nglobals: 1,
        global_names: vec!["g0".into()],
        registry: reg,
    }
}

/// Runs `main` under `config` and returns the error it must produce.
fn run_expecting_error(reg: RepRegistry, funs: Vec<CodeFun>, config: MachineConfig) -> VmError {
    let mut m = Machine::new(program(reg, funs), config).unwrap();
    m.run().expect_err("program is built to fail")
}

#[test]
fn every_kind_is_constructible_with_stable_unique_labels() {
    let kinds = vec![
        VmErrorKind::NotAProcedure,
        VmErrorKind::ArityMismatch,
        VmErrorKind::BadMemoryAccess,
        VmErrorKind::DivideByZero,
        VmErrorKind::BadRepOperation,
        VmErrorKind::SchemeError,
        VmErrorKind::BadProgram,
        VmErrorKind::Timeout,
        VmErrorKind::UncaughtCondition,
        VmErrorKind::OutOfMemory {
            requested: 16,
            capacity: 8,
            phase: OomPhase::Alloc,
        },
    ];
    let labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
    let mut unique = labels.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), labels.len(), "labels are unique per kind");
    for k in &kinds {
        assert_eq!(k.is_oom(), k.label() == "out-of-memory");
        let e = VmError::new(k.clone(), "detail");
        assert_eq!(&e.kind, k, "construction round-trips the kind");
    }
}

#[test]
fn calling_a_fixnum_is_not_a_procedure() {
    let r = classic_registry();
    let enc = r.reg.encode_immediate(r.fx, 5);
    let main = fun(
        "main",
        0,
        3,
        vec![
            Inst::Const { d: 1, imm: enc },
            Inst::Call {
                d: 2,
                f: 1,
                args: vec![],
            },
            Inst::Ret { s: 2 },
        ],
    );
    let e = run_expecting_error(r.reg, vec![main], MachineConfig::default());
    assert_eq!(e.kind, VmErrorKind::NotAProcedure);
}

#[test]
fn wrong_argument_count_is_arity_mismatch() {
    let r = classic_registry();
    let callee = fun("one-arg", 1, 3, vec![Inst::Ret { s: 1 }]);
    let main = fun(
        "main",
        0,
        3,
        vec![
            Inst::MakeClosure {
                d: 1,
                f: 1,
                free: vec![],
            },
            Inst::Call {
                d: 2,
                f: 1,
                args: vec![],
            },
            Inst::Ret { s: 2 },
        ],
    );
    let e = run_expecting_error(r.reg, vec![main, callee], MachineConfig::default());
    assert_eq!(e.kind, VmErrorKind::ArityMismatch);
    assert!(e.to_string().contains("one-arg"), "error names the callee");
}

#[test]
fn quotient_by_zero_is_divide_by_zero() {
    let r = classic_registry();
    let enc = r.reg.encode_immediate(r.fx, 6);
    let main = fun(
        "main",
        0,
        4,
        vec![
            Inst::Const { d: 1, imm: enc },
            Inst::Const { d: 2, imm: 0 },
            Inst::Bin {
                op: BinOp::Quot,
                d: 3,
                a: 1,
                b: 2,
            },
            Inst::Ret { s: 3 },
        ],
    );
    let e = run_expecting_error(r.reg, vec![main], MachineConfig::default());
    assert_eq!(e.kind, VmErrorKind::DivideByZero);
}

#[test]
fn load_through_garbage_pointer_is_bad_memory_access() {
    let r = classic_registry();
    let main = fun(
        "main",
        0,
        3,
        vec![
            // A "pair-tagged" word far outside the heap.
            Inst::Const {
                d: 1,
                imm: (1_i64 << 40) | 0b001,
            },
            Inst::LoadD {
                d: 2,
                p: 1,
                disp: 8 - 0b001,
            },
            Inst::Ret { s: 2 },
        ],
    );
    let e = run_expecting_error(r.reg, vec![main], MachineConfig::default());
    assert_eq!(e.kind, VmErrorKind::BadMemoryAccess);
}

#[test]
fn negative_dynamic_allocation_length_is_bad_rep_operation() {
    let r = classic_registry();
    let enc = r.reg.encode_immediate(r.fx, -1);
    let pair = r.pair;
    let main = fun(
        "main",
        0,
        3,
        vec![
            Inst::Const { d: 1, imm: enc },
            Inst::AllocFill {
                d: 2,
                len: RegImm::Reg(1),
                fill: 1,
                rep: pair,
            },
            Inst::Ret { s: 2 },
        ],
    );
    let e = run_expecting_error(r.reg, vec![main], MachineConfig::default());
    assert_eq!(e.kind, VmErrorKind::BadRepOperation);
}

#[test]
fn error_op_is_scheme_error() {
    let r = classic_registry();
    let enc = r.reg.encode_immediate(r.fx, 99);
    let main = fun(
        "main",
        0,
        2,
        vec![Inst::Const { d: 1, imm: enc }, Inst::ErrorOp { s: 1 }],
    );
    let e = run_expecting_error(r.reg, vec![main], MachineConfig::default());
    assert_eq!(e.kind, VmErrorKind::SchemeError);
    assert!(e.to_string().contains("99"), "error carries the value");
}

#[test]
fn missing_required_role_is_bad_program() {
    // A registry with no `closure` role cannot load any program.
    let mut reg = RepRegistry::new();
    let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
    let bo = reg.intern_immediate("boolean", 8, 0b010, 8).unwrap();
    let un = reg
        .intern_immediate("unspecified", 8, 0b0001_0010, 8)
        .unwrap();
    for (role, id) in [("fixnum", fx), ("boolean", bo), ("unspecified", un)] {
        reg.provide_role(role, id).unwrap();
    }
    let main = fun("main", 0, 2, vec![Inst::Ret { s: 0 }]);
    let e = Machine::new(program(reg, vec![main]), MachineConfig::default())
        .expect_err("load must fail");
    assert_eq!(e.kind, VmErrorKind::BadProgram);
    assert!(e.to_string().contains("closure"), "names the missing role");
}

#[test]
fn instruction_budget_exhaustion_is_timeout() {
    let r = classic_registry();
    let main = fun("main", 0, 2, vec![Inst::Jump { t: 0 }]);
    let e = run_expecting_error(
        r.reg,
        vec![main],
        MachineConfig {
            instruction_limit: Some(1000),
            ..Default::default()
        },
    );
    assert_eq!(e.kind, VmErrorKind::Timeout);
}

/// A main that loops forever allocating pairs, each keeping the previous
/// one alive through its fields — live data grows until the cap is hit.
fn allocating_loop(r: &Reg) -> CodeFun {
    let enc = r.reg.encode_immediate(r.fx, 0);
    let pair = r.pair;
    fun(
        "main",
        0,
        3,
        vec![
            Inst::Const { d: 1, imm: enc },
            Inst::AllocFill {
                d: 2,
                len: RegImm::Imm(2),
                fill: 1,
                rep: pair,
            },
            Inst::Move { d: 1, s: 2 },
            Inst::Jump { t: 1 },
        ],
    )
}

#[test]
fn oom_during_collect_when_live_data_fills_a_capped_heap() {
    let r = classic_registry();
    let main = allocating_loop(&r);
    let e = run_expecting_error(
        r.reg,
        vec![main],
        MachineConfig {
            fault: FaultPlan::none().with_heap_cap_words(256),
            ..Default::default()
        },
    );
    let VmErrorKind::OutOfMemory {
        requested,
        capacity,
        phase,
    } = e.kind
    else {
        panic!("expected OutOfMemory, got {e}");
    };
    assert_eq!(phase, OomPhase::Collect, "a collection ran first");
    assert!(capacity <= 256, "capacity respects the cap");
    assert!(requested <= capacity, "the request alone would have fit");
}

#[test]
fn oom_during_alloc_when_one_request_exceeds_the_cap() {
    let r = classic_registry();
    let enc = r.reg.encode_immediate(r.fx, 0);
    let pair = r.pair;
    let main = fun(
        "main",
        0,
        3,
        vec![
            Inst::Const { d: 1, imm: enc },
            Inst::AllocFill {
                d: 2,
                len: RegImm::Imm(100_000),
                fill: 1,
                rep: pair,
            },
            Inst::Ret { s: 2 },
        ],
    );
    let e = run_expecting_error(
        r.reg,
        vec![main],
        MachineConfig {
            fault: FaultPlan::none().with_heap_cap_words(256),
            ..Default::default()
        },
    );
    let VmErrorKind::OutOfMemory {
        requested, phase, ..
    } = e.kind
    else {
        panic!("expected OutOfMemory, got {e}");
    };
    assert_eq!(phase, OomPhase::Alloc, "the request could never fit");
    assert!(requested > 256, "requested words reflect the request");
}

#[test]
fn oom_phases_are_distinguishable_but_share_a_label() {
    let a = VmError::oom(100, 64, OomPhase::Alloc);
    let c = VmError::oom(8, 64, OomPhase::Collect);
    assert_ne!(a.kind, c.kind);
    assert_eq!(a.kind.label(), c.kind.label());
    assert!(a.is_oom() && c.is_oom());
}

#[test]
fn fail_alloc_at_fails_the_exact_ordinal() {
    let r = classic_registry();
    // Count the fault-free run's allocations first.
    let total = {
        let mut m = Machine::new(
            program(r.reg.clone(), vec![allocating_loop(&r)]),
            MachineConfig {
                instruction_limit: Some(100),
                ..Default::default()
            },
        )
        .unwrap();
        let _ = m.run().expect_err("loop times out");
        m.allocations()
    };
    assert!(total > 3, "the loop allocates");
    // Failing ordinal n stops the machine with exactly n-1 allocations done
    // and a structured alloc-phase OOM.
    for n in [1, 2, total] {
        let mut m = Machine::new(
            program(r.reg.clone(), vec![allocating_loop(&r)]),
            MachineConfig {
                instruction_limit: Some(100),
                fault: FaultPlan::none().with_fail_alloc_at(n),
                ..Default::default()
            },
        )
        .unwrap();
        let e = m.run().expect_err("scheduled allocation failure");
        assert!(e.is_oom(), "fault surfaces as OOM, got {e}");
        // The failed attempt is itself ordinal `n`, so the stream stops
        // exactly there, with n-1 objects actually created.
        assert_eq!(m.allocations(), n, "the fault consumed ordinal n");
        assert_eq!(
            m.counters.allocated_objects,
            n - 1,
            "objects completed before the fault"
        );
    }
}

#[test]
fn identical_plans_give_identical_outcomes() {
    let r = classic_registry();
    let run = |plan: FaultPlan| {
        let mut m = Machine::new(
            program(r.reg.clone(), vec![allocating_loop(&r)]),
            MachineConfig {
                instruction_limit: Some(500),
                fault: plan,
                ..Default::default()
            },
        )
        .unwrap();
        let res = m.run().map(|w| m.describe(w)).map_err(|e| e.to_string());
        (res, m.allocations(), m.counters.gc_count)
    };
    for plan in [
        FaultPlan::none()
            .with_gc_every_alloc()
            .with_heap_cap_words(512),
        FaultPlan::none().with_gc_jitter_seed(0xC0FFEE),
        FaultPlan::none().with_fail_alloc_at(7),
    ] {
        let a = run(plan.clone());
        let b = run(plan.clone());
        assert_eq!(a, b, "plan {plan:?} replays identically");
    }
}

#[test]
fn raise_without_handler_is_uncaught_condition() {
    let r = classic_registry();
    let enc = r.reg.encode_immediate(r.fx, 3);
    let main = fun(
        "main",
        0,
        2,
        vec![Inst::Const { d: 1, imm: enc }, Inst::RaiseOp { s: 1 }],
    );
    let e = run_expecting_error(r.reg, vec![main], MachineConfig::default());
    assert_eq!(e.kind, VmErrorKind::UncaughtCondition);
    assert_eq!(e.kind.label(), "uncaught-condition");
    assert!(
        e.to_string().contains('3'),
        "error describes the raised value"
    );
}

/// Registry rich enough for condition delivery: the trap path interns the
/// kind label as a symbol and allocates a `condition` record, so the
/// symbol, string, and condition roles must all exist.
fn delivery_registry() -> Reg {
    let mut r = classic_registry();
    let ch = r.reg.intern_immediate("char", 8, 0b0001_0010, 8).unwrap();
    let st = r.reg.intern_pointer("string", 0b101, false).unwrap();
    let sy = r.reg.intern_pointer("symbol", 0b110, false).unwrap();
    let cond = r.reg.intern_pointer("condition", 0b100, true).unwrap();
    for (role, id) in [
        ("char", ch),
        ("string", st),
        ("symbol", sy),
        ("condition", cond),
    ] {
        r.reg.provide_role(role, id).unwrap();
    }
    r
}

/// Builds `main` = handler installed around `body_insts`; the handler
/// ignores its condition argument and returns fixnum 7.
fn guarded(r: &Reg, mut body_insts: Vec<Inst>, nregs: usize) -> Vec<CodeFun> {
    let enc7 = r.reg.encode_immediate(r.fx, 7);
    let handler = fun(
        "handler",
        1,
        3,
        vec![Inst::Const { d: 2, imm: enc7 }, Inst::Ret { s: 2 }],
    );
    let resume_at = (2 + body_insts.len() + 1) as u32;
    let mut insts = vec![
        Inst::MakeClosure {
            d: 1,
            f: 1,
            free: vec![],
        },
        Inst::PushHandler {
            h: 1,
            d: 2,
            t: resume_at,
        },
    ];
    insts.append(&mut body_insts);
    insts.push(Inst::PopHandler);
    insts.push(Inst::Ret { s: 2 });
    vec![fun("main", 0, nregs, insts), handler]
}

#[test]
fn recoverable_kinds_are_handler_deliverable() {
    // Each recoverable fault class, raised under an installed handler,
    // becomes a normal value (the handler's 7) instead of an `Err`.
    let enc = |r: &Reg, n: i64| r.reg.encode_immediate(r.fx, n);

    // divide-by-zero
    let r = delivery_registry();
    let body = vec![
        Inst::Const {
            d: 3,
            imm: enc(&r, 1),
        },
        Inst::Const { d: 4, imm: 0 },
        Inst::Bin {
            op: BinOp::Quot,
            d: 3,
            a: 3,
            b: 4,
        },
    ];
    let mut m = Machine::new(
        program(r.reg.clone(), guarded(&r, body, 5)),
        MachineConfig::default(),
    )
    .unwrap();
    let w = m.run().expect("handler converts the trap");
    assert_eq!(m.describe(w), "7");

    // scheme-error (ErrorOp)
    let r = delivery_registry();
    let body = vec![
        Inst::Const {
            d: 3,
            imm: enc(&r, 99),
        },
        Inst::ErrorOp { s: 3 },
    ];
    let mut m = Machine::new(
        program(r.reg.clone(), guarded(&r, body, 4)),
        MachineConfig::default(),
    )
    .unwrap();
    let w = m.run().expect("handler converts the trap");
    assert_eq!(m.describe(w), "7");

    // uncaught-condition (RaiseOp) — delivered identity-preserving
    let r = delivery_registry();
    let body = vec![
        Inst::Const {
            d: 3,
            imm: enc(&r, 42),
        },
        Inst::RaiseOp { s: 3 },
    ];
    let mut m = Machine::new(
        program(r.reg.clone(), guarded(&r, body, 4)),
        MachineConfig::default(),
    )
    .unwrap();
    let w = m.run().expect("handler converts the trap");
    assert_eq!(m.describe(w), "7");
}

#[test]
fn terminal_kinds_ignore_installed_handlers() {
    // Timeout is terminal: a handler cannot absorb budget exhaustion.
    let r = delivery_registry();
    let body = vec![Inst::Jump { t: 2 }]; // spin on the jump forever
    let mut m = Machine::new(
        program(r.reg.clone(), guarded(&r, body, 4)),
        MachineConfig {
            instruction_limit: Some(1000),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::Timeout);

    // BadMemoryAccess is terminal: a wild load is a machine-integrity
    // fault, not a Scheme-visible condition.
    let r = delivery_registry();
    let body = vec![
        Inst::Const {
            d: 3,
            imm: (1_i64 << 40) | 0b001,
        },
        Inst::LoadD {
            d: 3,
            p: 3,
            disp: 8 - 0b001,
        },
    ];
    let mut m = Machine::new(
        program(r.reg.clone(), guarded(&r, body, 4)),
        MachineConfig::default(),
    )
    .unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::BadMemoryAccess);
}

#[test]
fn delivered_condition_carries_kind_and_payload() {
    // A handler that returns its argument: the machine's description of a
    // delivered scheme-error condition exposes the 4-field record.
    let r = delivery_registry();
    let enc = r.reg.encode_immediate(r.fx, 99);
    let handler = fun("handler", 1, 2, vec![Inst::Ret { s: 1 }]);
    let main = fun(
        "main",
        0,
        4,
        vec![
            Inst::MakeClosure {
                d: 1,
                f: 1,
                free: vec![],
            },
            Inst::PushHandler { h: 1, d: 2, t: 5 },
            Inst::Const { d: 3, imm: enc },
            Inst::ErrorOp { s: 3 },
            Inst::PopHandler,
            Inst::Ret { s: 2 },
        ],
    );
    let mut m = Machine::new(
        program(r.reg.clone(), vec![main, handler]),
        MachineConfig::default(),
    )
    .unwrap();
    let w = m.run().expect("handler returns the condition");
    // The condition renders as a discriminated record: field 0 is the
    // kind symbol, field 1 the payload (the 99).
    let desc = m.describe(w);
    assert!(desc.starts_with("#<condition "), "{desc}");
    assert!(desc.contains("scheme-error"), "{desc}");
    assert!(desc.contains("99"), "{desc}");
}
