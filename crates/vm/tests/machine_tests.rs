//! Integration tests driving the VM with hand-assembled programs over a
//! hand-built (library-style) representation registry.

use sxr_ir::rep::RepRegistry;
use sxr_sexp::Datum;
use sxr_vm::{
    BinOp, CmpOp, CodeFun, CodeProgram, Inst, Machine, MachineConfig, PoolEntry, RegImm, RepVmOp,
    VmErrorKind,
};

/// The classic tagging scheme the shipped prelude uses; tests build it by
/// hand the same way the library would.
struct Reg {
    reg: RepRegistry,
    fx: u32,
    pair: u32,
}

fn classic_registry() -> Reg {
    let mut reg = RepRegistry::new();
    let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
    let bo = reg.intern_immediate("boolean", 8, 0b0000_0010, 8).unwrap();
    let ch = reg.intern_immediate("char", 8, 0b0001_0010, 8).unwrap();
    let nil = reg.intern_immediate("null", 8, 0b0010_0010, 8).unwrap();
    let un = reg
        .intern_immediate("unspecified", 8, 0b0011_0010, 8)
        .unwrap();
    let pair = reg.intern_pointer("pair", 0b001, false).unwrap();
    let vec_r = reg.intern_pointer("vector", 0b011, false).unwrap();
    let string = reg.intern_pointer("string", 0b101, false).unwrap();
    let symbol = reg.intern_pointer("symbol", 0b110, false).unwrap();
    let clo = reg.intern_pointer("closure", 0b111, false).unwrap();
    let reptype = reg.intern_pointer("rep-type", 0b100, true).unwrap();
    for (role, id) in [
        ("fixnum", fx),
        ("boolean", bo),
        ("char", ch),
        ("null", nil),
        ("unspecified", un),
        ("pair", pair),
        ("vector", vec_r),
        ("string", string),
        ("symbol", symbol),
        ("closure", clo),
        ("rep-type", reptype),
    ] {
        reg.provide_role(role, id).unwrap();
    }
    Reg { reg, fx, pair }
}

fn fun(name: &str, arity: usize, nregs: usize, insts: Vec<Inst>) -> CodeFun {
    CodeFun {
        name: name.into(),
        arity,
        variadic: false,
        nregs,
        free_count: 0,
        insts,
        ptr_map: vec![true; nregs],
        free_ptr_map: vec![],
    }
}

fn run_program(prog: CodeProgram) -> (String, Machine) {
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    let w = m.run().unwrap();
    let s = m.describe(w);
    (s, m)
}

fn one_fun_program(reg: RepRegistry, main: CodeFun, pool: Vec<PoolEntry>) -> CodeProgram {
    CodeProgram {
        funs: vec![main],
        main: 0,
        pool,
        nglobals: 4,
        global_names: (0..4).map(|i| format!("g{i}")).collect(),
        registry: reg,
    }
}

#[test]
fn arithmetic_and_describe() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let main = fun(
        "main",
        0,
        4,
        vec![
            Inst::Const { d: 1, imm: enc(6) },
            Inst::Const { d: 2, imm: enc(7) },
            // fixnum multiply: (a >> 3) * b  (tags are 0)
            Inst::BinI {
                op: BinOp::Shr,
                d: 3,
                a: 1,
                imm: 3,
            },
            Inst::Bin {
                op: BinOp::Mul,
                d: 3,
                a: 3,
                b: 2,
            },
            Inst::Ret { s: 3 },
        ],
    );
    let (s, m) = run_program(one_fun_program(r.reg, main, vec![]));
    assert_eq!(s, "42");
    assert_eq!(m.counters.total, 5);
}

#[test]
fn pool_constants_roundtrip() {
    let r = classic_registry();
    let datum = sxr_sexp::parse_one("(1 (\"two\" #\\x) sym #t . 9)").unwrap();
    let main = fun(
        "main",
        0,
        2,
        vec![Inst::Pool { d: 1, idx: 0 }, Inst::Ret { s: 1 }],
    );
    let (s, _m) = run_program(one_fun_program(
        r.reg,
        main,
        vec![PoolEntry::Datum(datum.clone())],
    ));
    assert_eq!(s, datum.to_string());
}

#[test]
fn vector_literal_and_symbol_interning() {
    let r = classic_registry();
    let v = sxr_sexp::parse_one("#(a b a)").unwrap();
    let main = fun(
        "main",
        0,
        2,
        vec![Inst::Pool { d: 1, idx: 0 }, Inst::Ret { s: 1 }],
    );
    let (s, m) = run_program(one_fun_program(r.reg, main, vec![PoolEntry::Datum(v)]));
    assert_eq!(s, "#(a b a)");
    // Interning: the two `a`s are the same heap word.
    let _ = m;
}

#[test]
fn calls_closures_and_globals() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    // f1: (lambda (x) (+ x captured)) with captured in free slot 0
    let add1 = CodeFun {
        name: "adder".into(),
        arity: 1,
        variadic: false,
        nregs: 4,
        free_count: 1,
        insts: vec![
            // load free var
            Inst::LoadD {
                d: 2,
                p: 0,
                disp: 8 * 2 - 0b111,
            },
            // fixnum add: x + captured (tags 0)
            Inst::Bin {
                op: BinOp::Add,
                d: 3,
                a: 1,
                b: 2,
            },
            Inst::Ret { s: 3 },
        ],
        ptr_map: vec![true; 4],
        free_ptr_map: vec![],
    };
    let main = fun(
        "main",
        0,
        5,
        vec![
            Inst::Const { d: 1, imm: enc(10) },
            Inst::MakeClosure {
                d: 2,
                f: 1,
                free: vec![1],
            },
            Inst::GlobalSet { g: 0, s: 2 },
            Inst::GlobalGet { d: 3, g: 0 },
            Inst::Const { d: 1, imm: enc(32) },
            Inst::Call {
                d: 4,
                f: 3,
                args: vec![1],
            },
            Inst::Ret { s: 4 },
        ],
    );
    let prog = CodeProgram {
        funs: vec![main, add1],
        main: 0,
        pool: vec![],
        nglobals: 1,
        global_names: vec!["adder".into()],
        registry: r.reg,
    };
    let (s, m) = run_program(prog);
    assert_eq!(s, "42");
    assert_eq!(m.counters.calls, 1);
}

#[test]
fn tail_call_does_not_grow_stack() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    // loop(n): if n == 0 ret 99 else tail-call loop(n - 8)   [fixnum 1 = 8]
    let loop_fun = CodeFun {
        name: "loop".into(),
        arity: 1,
        variadic: false,
        nregs: 3,
        free_count: 0,
        insts: vec![
            Inst::JumpCmp {
                op: CmpOp::Ne,
                a: 1,
                b: RegImm::Imm(0),
                t: 3,
            },
            Inst::Const { d: 2, imm: enc(99) },
            Inst::Ret { s: 2 },
            Inst::BinI {
                op: BinOp::Sub,
                d: 1,
                a: 1,
                imm: 8,
            },
            Inst::TailCallKnown {
                f: 1,
                clo: 0,
                args: vec![1],
            },
        ],
        ptr_map: vec![true, true, true],
        free_ptr_map: vec![],
    };
    let main = fun(
        "main",
        0,
        3,
        vec![
            Inst::Const {
                d: 1,
                imm: enc(1_000_000),
            },
            Inst::MakeClosure {
                d: 2,
                f: 1,
                free: vec![],
            },
            Inst::Call {
                d: 1,
                f: 2,
                args: vec![1],
            },
            Inst::Ret { s: 1 },
        ],
    );
    let prog = CodeProgram {
        funs: vec![main, loop_fun],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let (s, m) = run_program(prog);
    assert_eq!(s, "99");
    assert!(m.counters.calls > 1_000_000);
}

#[test]
fn allocation_load_store_and_gc_survival() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let pair_tag = 0b001;
    // Build one live pair, then allocate garbage in a loop to force GCs,
    // then read the live pair's car.
    let main = fun(
        "main",
        0,
        8,
        vec![
            Inst::Const { d: 1, imm: enc(7) },
            Inst::Const { d: 2, imm: enc(35) },
            Inst::AllocFill {
                d: 3,
                len: RegImm::Imm(2),
                fill: 1,
                rep: 5,
            }, // pair rep id
            Inst::StoreD {
                p: 3,
                disp: 8 * 2 - pair_tag,
                s: 2,
            }, // cdr := 35
            // garbage loop: 50_000 iterations of a 2-field alloc
            Inst::Const { d: 4, imm: 50_000 }, // raw counter
            // L5:
            Inst::JumpCmp {
                op: CmpOp::Eq,
                a: 4,
                b: RegImm::Imm(0),
                t: 9,
            },
            Inst::AllocFill {
                d: 5,
                len: RegImm::Imm(2),
                fill: 1,
                rep: 5,
            },
            Inst::BinI {
                op: BinOp::Sub,
                d: 4,
                a: 4,
                imm: 1,
            },
            Inst::Jump { t: 5 },
            // L9: sum car + cdr of the live pair
            Inst::LoadD {
                d: 6,
                p: 3,
                disp: 8 - pair_tag,
            },
            Inst::LoadD {
                d: 7,
                p: 3,
                disp: 16 - pair_tag,
            },
            Inst::Bin {
                op: BinOp::Add,
                d: 6,
                a: 6,
                b: 7,
            },
            Inst::Ret { s: 6 },
        ],
    );
    // Register 4 holds a raw counter; mark it non-pointer.
    let mut main = main;
    main.ptr_map[4] = false;
    let prog = CodeProgram {
        funs: vec![main],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_words: 4096,
            instruction_limit: None,
            fault: Default::default(),
            verifier: None,
        },
    )
    .unwrap();
    let w = m.run().unwrap();
    assert_eq!(m.describe(w), "42");
    assert!(
        m.counters.gc_count > 10,
        "expected many GCs, got {}",
        m.counters.gc_count
    );
    assert_eq!(m.counters.allocated_objects, 50_001);
}

#[test]
fn generic_rep_ops_work_at_runtime() {
    // Build a *new* immediate type at run time through the generic ops —
    // the first-classness property.
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let main = fun(
        "main",
        0,
        8,
        vec![
            Inst::Pool { d: 1, idx: 0 }, // 'mytype symbol
            Inst::Const { d: 2, imm: enc(8) },
            Inst::Const {
                d: 3,
                imm: enc(0b0100_0010),
            },
            Inst::Const { d: 4, imm: enc(8) },
            Inst::Rep {
                op: RepVmOp::MakeImm,
                d: 5,
                args: vec![1, 2, 3, 4],
            },
            // inject raw 5, test, project
            Inst::Const { d: 6, imm: 5 }, // raw
            Inst::Rep {
                op: RepVmOp::Inject,
                d: 6,
                args: vec![5, 6],
            },
            Inst::Rep {
                op: RepVmOp::Test,
                d: 7,
                args: vec![5, 6],
            },
            // result = project(inject(5)) if test else 0
            Inst::JumpCmp {
                op: CmpOp::Eq,
                a: 7,
                b: RegImm::Imm(0),
                t: 11,
            },
            Inst::Rep {
                op: RepVmOp::Project,
                d: 6,
                args: vec![5, 6],
            },
            // tagged fixnum result: 5 << 3
            Inst::BinI {
                op: BinOp::Shl,
                d: 6,
                a: 6,
                imm: 3,
            },
            Inst::Ret { s: 6 },
        ],
    );
    let mut main = main;
    main.ptr_map[6] = false;
    main.ptr_map[7] = false;
    let prog = one_fun_program(
        r.reg,
        main,
        vec![PoolEntry::Datum(Datum::Symbol("mytype".into()))],
    );
    let (s, m) = run_program(prog);
    assert_eq!(s, "5");
    assert!(m.registry.by_name("mytype").is_some());
}

#[test]
fn generic_rep_alloc_ref_set_len() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let main = fun(
        "main",
        0,
        8,
        vec![
            Inst::Pool { d: 1, idx: 0 },  // rep object for pair
            Inst::Const { d: 2, imm: 2 }, // raw length
            Inst::Const { d: 3, imm: enc(11) },
            Inst::Rep {
                op: RepVmOp::Alloc,
                d: 4,
                args: vec![1, 2, 3],
            },
            Inst::Const { d: 5, imm: 1 }, // raw index
            Inst::Const { d: 6, imm: enc(31) },
            Inst::Rep {
                op: RepVmOp::Set,
                d: 7,
                args: vec![1, 4, 5, 6],
            },
            Inst::Rep {
                op: RepVmOp::Ref,
                d: 6,
                args: vec![1, 4, 5],
            },
            Inst::Rep {
                op: RepVmOp::Ref,
                d: 3,
                args: vec![1, 4, 2],
            }, // index 2: out of range!
            Inst::Ret { s: 6 },
        ],
    );
    let mut main = main;
    main.ptr_map[2] = false;
    main.ptr_map[5] = false;
    let pair_id = r.pair;
    let prog = one_fun_program(r.reg, main, vec![PoolEntry::Rep(pair_id)]);
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    let err = m.run().unwrap_err();
    assert_eq!(err.kind, VmErrorKind::BadRepOperation);
    assert!(err.message.contains("out of range"));
}

#[test]
fn errors_are_reported() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    // Division by zero.
    let main = fun(
        "main",
        0,
        3,
        vec![
            Inst::Const { d: 1, imm: enc(1) },
            Inst::Const { d: 2, imm: 0 },
            Inst::Bin {
                op: BinOp::Quot,
                d: 1,
                a: 1,
                b: 2,
            },
            Inst::Ret { s: 1 },
        ],
    );
    let prog = one_fun_program(r.reg, main, vec![]);
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::DivideByZero);

    // Call of a non-procedure.
    let r = classic_registry();
    let main = fun(
        "main",
        0,
        3,
        vec![
            Inst::Const {
                d: 1,
                imm: r.reg.encode_immediate(r.fx, 5),
            },
            Inst::Call {
                d: 2,
                f: 1,
                args: vec![],
            },
            Inst::Ret { s: 2 },
        ],
    );
    let prog = one_fun_program(r.reg, main, vec![]);
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::NotAProcedure);
}

#[test]
fn arity_mismatch() {
    let r = classic_registry();
    let id = fun("id", 1, 2, vec![Inst::Ret { s: 1 }]);
    let main = fun(
        "main",
        0,
        3,
        vec![
            Inst::MakeClosure {
                d: 1,
                f: 1,
                free: vec![],
            },
            Inst::Call {
                d: 2,
                f: 1,
                args: vec![],
            },
            Inst::Ret { s: 2 },
        ],
    );
    let prog = CodeProgram {
        funs: vec![main, id],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    let err = m.run().unwrap_err();
    assert_eq!(err.kind, VmErrorKind::ArityMismatch);
    assert!(err.message.contains("id"));
}

#[test]
fn write_char_output_and_reset_counters() {
    let r = classic_registry();
    let ch = r.reg.role("char").unwrap();
    let enc_c = |c: char| r.reg.encode_immediate(ch, c as i64);
    let main = fun(
        "main",
        0,
        2,
        vec![
            Inst::Const {
                d: 1,
                imm: enc_c('h'),
            },
            Inst::WriteChar { s: 1 },
            Inst::ResetCounters,
            Inst::Const {
                d: 1,
                imm: enc_c('i'),
            },
            Inst::WriteChar { s: 1 },
            Inst::Ret { s: 1 },
        ],
    );
    let prog = one_fun_program(r.reg, main, vec![]);
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    m.run().unwrap();
    assert_eq!(m.output(), "hi");
    // Counters were reset mid-run: only the last three instructions count.
    assert_eq!(m.counters.total, 3);
}

#[test]
fn instruction_limit_timeout() {
    let r = classic_registry();
    let main = fun("main", 0, 2, vec![Inst::Jump { t: 0 }]);
    let prog = one_fun_program(r.reg, main, vec![]);
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_words: 1 << 12,
            instruction_limit: Some(10_000),
            fault: Default::default(),
            verifier: None,
        },
    )
    .unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::Timeout);
}

#[test]
fn missing_role_is_bad_program() {
    let mut reg = RepRegistry::new();
    let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
    reg.provide_role("fixnum", fx).unwrap();
    let main = fun("main", 0, 1, vec![Inst::Ret { s: 0 }]);
    let prog = CodeProgram {
        funs: vec![main],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: reg,
    };
    let err = Machine::new(prog, MachineConfig::default()).unwrap_err();
    assert_eq!(err.kind, VmErrorKind::BadProgram);
    assert!(err.message.contains("boolean"));
}

#[test]
fn intern_instruction_dedups() {
    let r = classic_registry();
    let main = fun(
        "main",
        0,
        5,
        vec![
            Inst::Pool { d: 1, idx: 0 }, // "abc" string 1
            Inst::Pool { d: 2, idx: 1 }, // "abc" string 2 (distinct object)
            Inst::Intern { d: 3, s: 1 },
            Inst::Intern { d: 4, s: 2 },
            Inst::Bin {
                op: BinOp::CmpEq,
                d: 1,
                a: 3,
                b: 4,
            },
            // raw 1/0 -> fixnum
            Inst::BinI {
                op: BinOp::Shl,
                d: 1,
                a: 1,
                imm: 3,
            },
            Inst::Ret { s: 1 },
        ],
    );
    let prog = one_fun_program(
        r.reg,
        main,
        vec![
            PoolEntry::Datum(Datum::String("abc".into())),
            PoolEntry::Datum(Datum::String("abc".into())),
        ],
    );
    let (s, _m) = run_program(prog);
    assert_eq!(s, "1");
}

#[test]
fn variadic_calls_build_rest_lists() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    // f(a . rest): returns rest (register 2 holds the built list).
    let f = CodeFun {
        name: "f".into(),
        arity: 1,
        variadic: true,
        nregs: 3,
        free_count: 0,
        insts: vec![Inst::Ret { s: 2 }],
        ptr_map: vec![true; 3],
        free_ptr_map: vec![],
    };
    let main = fun(
        "main",
        0,
        6,
        vec![
            Inst::MakeClosure {
                d: 1,
                f: 1,
                free: vec![],
            },
            Inst::Const { d: 2, imm: enc(1) },
            Inst::Const { d: 3, imm: enc(2) },
            Inst::Const { d: 4, imm: enc(3) },
            Inst::Call {
                d: 5,
                f: 1,
                args: vec![2, 3, 4],
            },
            Inst::Ret { s: 5 },
        ],
    );
    let prog = CodeProgram {
        funs: vec![main, f],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let (s, _m) = run_program(prog);
    assert_eq!(s, "(2 3)");
}

#[test]
fn variadic_with_exact_arity_gets_empty_rest() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let f = CodeFun {
        name: "f".into(),
        arity: 1,
        variadic: true,
        nregs: 3,
        free_count: 0,
        insts: vec![Inst::Ret { s: 2 }],
        ptr_map: vec![true; 3],
        free_ptr_map: vec![],
    };
    let main = fun(
        "main",
        0,
        4,
        vec![
            Inst::MakeClosure {
                d: 1,
                f: 1,
                free: vec![],
            },
            Inst::Const { d: 2, imm: enc(1) },
            Inst::Call {
                d: 3,
                f: 1,
                args: vec![2],
            },
            Inst::Ret { s: 3 },
        ],
    );
    let prog = CodeProgram {
        funs: vec![main, f],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let (s, _m) = run_program(prog);
    assert_eq!(s, "()");
}

#[test]
fn variadic_too_few_args_is_arity_error() {
    let r = classic_registry();
    let f = CodeFun {
        name: "f".into(),
        arity: 2,
        variadic: true,
        nregs: 4,
        free_count: 0,
        insts: vec![Inst::Ret { s: 1 }],
        ptr_map: vec![true; 4],
        free_ptr_map: vec![],
    };
    let main = fun(
        "main",
        0,
        3,
        vec![
            Inst::MakeClosure {
                d: 1,
                f: 1,
                free: vec![],
            },
            Inst::Call {
                d: 2,
                f: 1,
                args: vec![1],
            },
            Inst::Ret { s: 2 },
        ],
    );
    let prog = CodeProgram {
        funs: vec![main, f],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::ArityMismatch);
}

#[test]
fn frame_pool_no_register_bleed() {
    // `leak` writes a secret into a high register and returns; `probe` has
    // the same register count and returns a register it never wrote.  With
    // frame recycling the probe's registers come from the pool that just
    // held the secret — they must read as the library's register-init word
    // (fixnum 0), not as the previous frame's contents.
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let leak = fun(
        "leak",
        0,
        8,
        vec![
            Inst::Const {
                d: 7,
                imm: enc(123),
            },
            Inst::Ret { s: 7 },
        ],
    );
    let probe = fun("probe", 0, 8, vec![Inst::Ret { s: 7 }]);
    let main = fun(
        "main",
        0,
        5,
        vec![
            Inst::MakeClosure {
                d: 1,
                f: 1,
                free: vec![],
            },
            Inst::MakeClosure {
                d: 2,
                f: 2,
                free: vec![],
            },
            Inst::Call {
                d: 3,
                f: 1,
                args: vec![],
            },
            Inst::Call {
                d: 4,
                f: 2,
                args: vec![],
            },
            Inst::Ret { s: 4 },
        ],
    );
    let prog = CodeProgram {
        funs: vec![main, leak, probe],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let (s, m) = run_program(prog);
    assert_eq!(s, "0", "recycled frame must not leak the previous contents");
    assert_eq!(m.counters.calls, 2);
}

#[test]
fn timeout_at_exact_budget() {
    // Three instructions run to completion under a budget of exactly 3...
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let insts = vec![
        Inst::Const { d: 1, imm: enc(1) },
        Inst::Const { d: 1, imm: enc(2) },
        Inst::Ret { s: 1 },
    ];
    let prog = one_fun_program(r.reg, fun("main", 0, 2, insts.clone()), vec![]);
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_words: 1 << 12,
            instruction_limit: Some(3),
            fault: Default::default(),
            verifier: None,
        },
    )
    .unwrap();
    let w = m.run().unwrap();
    assert_eq!(m.describe(w), "2");
    assert_eq!(m.counters.total, 3, "budget and counters agree");

    // ...and time out under a budget of 2, without counting the
    // instruction that was refused.
    let r = classic_registry();
    let prog = one_fun_program(r.reg, fun("main", 0, 2, insts), vec![]);
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_words: 1 << 12,
            instruction_limit: Some(2),
            fault: Default::default(),
            verifier: None,
        },
    )
    .unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::Timeout);
    assert_eq!(m.counters.total, 2, "timed-out instruction is not counted");
}

#[test]
fn reset_counters_consumes_budget() {
    // `ResetCounters` is not *counted*, but it still costs one unit of the
    // instruction budget, so budgets cannot be evaded by resetting.
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let insts = vec![
        Inst::ResetCounters,
        Inst::Const { d: 1, imm: enc(7) },
        Inst::Ret { s: 1 },
    ];
    let prog = one_fun_program(r.reg, fun("main", 0, 2, insts.clone()), vec![]);
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_words: 1 << 12,
            instruction_limit: Some(3),
            fault: Default::default(),
            verifier: None,
        },
    )
    .unwrap();
    let w = m.run().unwrap();
    assert_eq!(m.describe(w), "7");
    assert_eq!(m.counters.total, 2, "reset excluded from counts");

    let r = classic_registry();
    let prog = one_fun_program(r.reg, fun("main", 0, 2, insts), vec![]);
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_words: 1 << 12,
            instruction_limit: Some(2),
            fault: Default::default(),
            verifier: None,
        },
    )
    .unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::Timeout);
}

/// Regression test for the GC growth policy: with more than half the heap
/// occupied by live data, every collection recovers only a sliver, so the
/// heap must *grow* rather than re-collect on (nearly) every allocation.
/// Under the old heuristic (grow only when the request still does not fit
/// or free < capacity/4) this program performed ~100 collections and the
/// heap never grew; the monotone policy doubles the heap on the first
/// tight collection.
#[test]
fn gc_grow_policy_does_not_thrash_at_high_residency() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let nil = r.reg.encode_immediate(r.reg.role("null").unwrap(), 0);
    // 867 live pairs = 2601 words: > half of the 4096-word heap.
    let mut main = fun(
        "main",
        0,
        7,
        vec![
            Inst::Const { d: 1, imm: nil },
            Inst::Const { d: 2, imm: 867 }, // raw counter
            // L2: build the live chain (fill = current head, so every cell
            // stays reachable from r1).
            Inst::JumpCmp {
                op: CmpOp::Eq,
                a: 2,
                b: RegImm::Imm(0),
                t: 7,
            },
            Inst::AllocFill {
                d: 3,
                len: RegImm::Imm(2),
                fill: 1,
                rep: 5,
            },
            Inst::Move { d: 1, s: 3 },
            Inst::BinI {
                op: BinOp::Sub,
                d: 2,
                a: 2,
                imm: 1,
            },
            Inst::Jump { t: 2 },
            // L7: churn garbage while the live chain pins >50% residency.
            Inst::Const { d: 4, imm: 50_000 }, // raw counter
            Inst::JumpCmp {
                op: CmpOp::Eq,
                a: 4,
                b: RegImm::Imm(0),
                t: 12,
            },
            Inst::AllocFill {
                d: 5,
                len: RegImm::Imm(2),
                fill: 1,
                rep: 5,
            },
            Inst::BinI {
                op: BinOp::Sub,
                d: 4,
                a: 4,
                imm: 1,
            },
            Inst::Jump { t: 8 },
            // L12: done.
            Inst::Const { d: 6, imm: enc(99) },
            Inst::Ret { s: 6 },
        ],
    );
    main.ptr_map[2] = false;
    main.ptr_map[4] = false;
    let prog = CodeProgram {
        funs: vec![main],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_words: 4096,
            instruction_limit: None,
            fault: Default::default(),
            verifier: None,
        },
    )
    .unwrap();
    let w = m.run().unwrap();
    assert_eq!(m.describe(w), "99");
    assert!(
        m.heap_capacity() > 4096,
        "high-residency heap must grow, stayed at {}",
        m.heap_capacity()
    );
    assert!(
        m.counters.gc_count < 40,
        "growth policy thrashed: {} collections",
        m.counters.gc_count
    );
}

/// GC stress: a deep live list survives dozens of collections driven by
/// churn garbage, with every payload intact at the end.
#[test]
fn gc_stress_deep_live_list_survives_churn() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let nil = r.reg.encode_immediate(r.reg.role("null").unwrap(), 0);
    let pair_tag = 1;
    let mut main = fun(
        "main",
        0,
        8,
        vec![
            Inst::Const { d: 1, imm: nil },
            Inst::Const { d: 2, imm: 300 }, // raw build counter
            Inst::Const { d: 7, imm: enc(1) },
            // L3: build 300 live pairs, car = 1, cdr = chain.
            Inst::JumpCmp {
                op: CmpOp::Eq,
                a: 2,
                b: RegImm::Imm(0),
                t: 9,
            },
            Inst::AllocFill {
                d: 3,
                len: RegImm::Imm(2),
                fill: 7,
                rep: 5,
            },
            Inst::StoreD {
                p: 3,
                disp: 16 - pair_tag,
                s: 1,
            }, // cdr := chain
            Inst::Move { d: 1, s: 3 },
            Inst::BinI {
                op: BinOp::Sub,
                d: 2,
                a: 2,
                imm: 1,
            },
            Inst::Jump { t: 3 },
            // L9: churn 20_000 garbage pairs.
            Inst::Const { d: 4, imm: 20_000 }, // raw churn counter
            Inst::JumpCmp {
                op: CmpOp::Eq,
                a: 4,
                b: RegImm::Imm(0),
                t: 14,
            },
            Inst::AllocFill {
                d: 5,
                len: RegImm::Imm(2),
                fill: 7,
                rep: 5,
            },
            Inst::BinI {
                op: BinOp::Sub,
                d: 4,
                a: 4,
                imm: 1,
            },
            Inst::Jump { t: 10 },
            // L14: walk the list summing cars (raw adds of tagged fixnums
            // keep the sum a tagged fixnum).
            Inst::Const { d: 6, imm: 0 }, // raw accumulator
            Inst::JumpCmp {
                op: CmpOp::Eq,
                a: 1,
                b: RegImm::Imm(nil as i32),
                t: 20,
            },
            Inst::LoadD {
                d: 5,
                p: 1,
                disp: 8 - pair_tag,
            }, // car
            Inst::Bin {
                op: BinOp::Add,
                d: 6,
                a: 6,
                b: 5,
            },
            Inst::LoadD {
                d: 1,
                p: 1,
                disp: 16 - pair_tag,
            }, // cdr
            Inst::Jump { t: 15 },
            Inst::Ret { s: 6 },
        ],
    );
    main.ptr_map[2] = false;
    main.ptr_map[4] = false;
    main.ptr_map[6] = false;
    let prog = CodeProgram {
        funs: vec![main],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_words: 2048,
            instruction_limit: None,
            fault: Default::default(),
            verifier: None,
        },
    )
    .unwrap();
    let w = m.run().unwrap();
    assert_eq!(m.describe(w), "300", "all 300 payloads survived");
    assert!(
        m.counters.gc_count >= 3,
        "expected at least 3 forced collections, got {}",
        m.counters.gc_count
    );
}

#[test]
fn heap_grows_transparently() {
    // Keep a growing live list so collections cannot reclaim; the heap
    // must grow rather than fail.
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let nil = r.reg.encode_immediate(r.reg.role("null").unwrap(), 0);
    let pair_tag = 1;
    let mut main = fun(
        "main",
        0,
        6,
        vec![
            Inst::Const { d: 1, imm: nil },    // the (live, growing) list
            Inst::Const { d: 2, imm: 20_000 }, // raw counter
            // L2: loop head
            Inst::JumpCmp {
                op: CmpOp::Eq,
                a: 2,
                b: RegImm::Imm(0),
                t: 8,
            },
            Inst::AllocFill {
                d: 3,
                len: RegImm::Imm(2),
                fill: 1,
                rep: 5,
            },
            Inst::StoreD {
                p: 3,
                disp: 16 - pair_tag,
                s: 1,
            }, // cdr := list
            Inst::Move { d: 1, s: 3 },
            Inst::BinI {
                op: BinOp::Sub,
                d: 2,
                a: 2,
                imm: 1,
            },
            Inst::Jump { t: 2 },
            // L8: exit
            Inst::Const { d: 4, imm: enc(99) },
            Inst::Ret { s: 4 },
        ],
    );
    main.ptr_map[2] = false;
    let prog = CodeProgram {
        funs: vec![main],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let mut m = Machine::new(
        prog,
        MachineConfig {
            heap_words: 1 << 10,
            instruction_limit: None,
            fault: Default::default(),
            verifier: None,
        },
    )
    .unwrap();
    let w = m.run().unwrap();
    assert_eq!(m.describe(w), "99");
    assert!(m.counters.allocated_objects == 20_000);
}

// ---------------------------------------------------------------------------
// Recoverable traps and resumable sessions
// ---------------------------------------------------------------------------

use sxr_vm::{StepResult, SuspendReason};

/// A classic registry extended with the `condition` role the trap path
/// needs to deliver conditions (the shipped prelude declares this in
/// reps.scm; hand-built tests do it here).
fn registry_with_conditions() -> Reg {
    let mut r = classic_registry();
    let cond = r.reg.intern_pointer("condition", 0b100, true).unwrap();
    r.reg.provide_role("condition", cond).unwrap();
    r
}

#[test]
fn run_after_error_is_deterministic_bad_program() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let main = fun(
        "main",
        0,
        3,
        vec![
            Inst::Const { d: 1, imm: enc(1) },
            Inst::Const { d: 2, imm: 0 },
            Inst::Bin {
                op: BinOp::Quot,
                d: 1,
                a: 1,
                b: 2,
            },
            Inst::Ret { s: 1 },
        ],
    );
    let prog = one_fun_program(r.reg, main, vec![]);
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::DivideByZero);
    // Running again after `Err` is pinned behaviour: a deterministic
    // BadProgram-class error, stable across repeated calls.
    let e1 = m.run().unwrap_err();
    assert_eq!(e1.kind, VmErrorKind::BadProgram);
    assert!(
        e1.message.contains("previously stopped with an error"),
        "{e1}"
    );
    let e2 = m.run().unwrap_err();
    assert_eq!(e1, e2, "identical on every subsequent call");
}

#[test]
fn run_after_completion_is_deterministic_bad_program() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let main = fun(
        "main",
        0,
        2,
        vec![Inst::Const { d: 1, imm: enc(5) }, Inst::Ret { s: 1 }],
    );
    let prog = one_fun_program(r.reg, main, vec![]);
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    let w = m.run().unwrap();
    assert_eq!(m.describe(w), "5");
    let err = m.run().unwrap_err();
    assert_eq!(err.kind, VmErrorKind::BadProgram);
    assert!(err.message.contains("already ran to completion"), "{err}");
}

#[test]
fn resume_without_suspension_is_bad_program() {
    let r = classic_registry();
    let main = fun("main", 0, 1, vec![Inst::Ret { s: 0 }]);
    let prog = one_fun_program(r.reg, main, vec![]);
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    let err = m.resume(10).unwrap_err();
    assert_eq!(err.kind, VmErrorKind::BadProgram);
    assert!(err.message.contains("has not started"), "{err}");
}

#[test]
fn sliced_resumption_matches_uninterrupted_run() {
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let insts = vec![
        Inst::Const { d: 1, imm: enc(6) },
        Inst::Const { d: 2, imm: enc(7) },
        Inst::BinI {
            op: BinOp::Shr,
            d: 3,
            a: 1,
            imm: 3,
        },
        Inst::Bin {
            op: BinOp::Mul,
            d: 3,
            a: 3,
            b: 2,
        },
        Inst::Ret { s: 3 },
    ];
    // Oracle: uninterrupted run.
    let prog = one_fun_program(
        classic_registry().reg,
        fun("main", 0, 4, insts.clone()),
        vec![],
    );
    let mut oracle = Machine::new(prog, MachineConfig::default()).unwrap();
    let ow = oracle.run().unwrap();

    // Single-instruction fuel slices: suspension at every boundary must be
    // invisible — same result word, same counters.
    let prog = one_fun_program(r.reg, fun("main", 0, 4, insts), vec![]);
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    m.set_fuel(Some(1));
    let mut suspensions = 0;
    let mut step = m.start().unwrap();
    let w = loop {
        match step {
            StepResult::Done(w) => break w,
            StepResult::Suspended(SuspendReason::FuelExhausted) => {
                suspensions += 1;
                step = m.resume(1).unwrap();
            }
            StepResult::Suspended(SuspendReason::HostCall) => {
                step = m.resume(0).unwrap();
            }
        }
    };
    assert_eq!(w, ow, "identical result word");
    assert_eq!(m.counters, oracle.counters, "identical counters");
    assert_eq!(suspensions, 4, "one suspension per refused instruction");
    assert_eq!(
        m.fuel(),
        Some(0),
        "every slice unit was spent on an instruction"
    );
}

#[test]
fn host_call_yield_on_output() {
    let r = classic_registry();
    let ch = r.reg.role("char").unwrap();
    let enc_c = |c: char| r.reg.encode_immediate(ch, c as i64);
    let main = fun(
        "main",
        0,
        2,
        vec![
            Inst::Const {
                d: 1,
                imm: enc_c('h'),
            },
            Inst::WriteChar { s: 1 },
            Inst::Const {
                d: 1,
                imm: enc_c('i'),
            },
            Inst::WriteChar { s: 1 },
            Inst::Ret { s: 1 },
        ],
    );
    let prog = one_fun_program(r.reg, main, vec![]);
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    m.set_yield_on_output(true);
    // First yield: the character is already in the buffer when the host
    // regains control (write-then-yield, so output is never lost).
    let step = m.start().unwrap();
    assert_eq!(step, StepResult::Suspended(SuspendReason::HostCall));
    assert_eq!(m.output(), "h");
    let step = m.resume(0).unwrap();
    assert_eq!(step, StepResult::Suspended(SuspendReason::HostCall));
    assert_eq!(m.output(), "hi");
    let StepResult::Done(_) = m.resume(0).unwrap() else {
        panic!("program completes after the last yield");
    };
    assert_eq!(m.output(), "hi");
}

#[test]
fn push_handler_intercepts_recoverable_trap() {
    let r = registry_with_conditions();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    // handler: arity 1, ignores the condition, returns 7.
    let handler = fun(
        "handler",
        1,
        3,
        vec![Inst::Const { d: 2, imm: enc(7) }, Inst::Ret { s: 2 }],
    );
    let mut main = fun(
        "main",
        0,
        5,
        vec![
            Inst::MakeClosure {
                d: 1,
                f: 1,
                free: vec![],
            },
            Inst::PushHandler { h: 1, d: 2, t: 6 },
            Inst::Const { d: 3, imm: enc(1) },
            Inst::Const { d: 4, imm: 0 }, // raw 0 divisor
            Inst::Bin {
                op: BinOp::Quot,
                d: 3,
                a: 3,
                b: 4,
            }, // traps: divide by zero
            Inst::PopHandler,             // skipped by the unwound path
            Inst::Ret { s: 2 },
        ],
    );
    main.ptr_map[4] = false;
    let prog = CodeProgram {
        funs: vec![main, handler],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    let w = m.run().unwrap();
    assert_eq!(
        m.describe(w),
        "7",
        "handler's return value replaces the trap"
    );
    assert_eq!(m.counters.calls, 1, "handler invocation is a counted call");
}

#[test]
fn trap_without_condition_role_stays_terminal() {
    // Without a `condition` role the machine cannot build a condition
    // object, so delivery fails and the original structured error surfaces
    // — a registry without the role keeps the pre-trap behaviour exactly.
    let r = classic_registry();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let handler = fun(
        "handler",
        1,
        3,
        vec![Inst::Const { d: 2, imm: enc(7) }, Inst::Ret { s: 2 }],
    );
    let mut main = fun(
        "main",
        0,
        5,
        vec![
            Inst::MakeClosure {
                d: 1,
                f: 1,
                free: vec![],
            },
            Inst::PushHandler { h: 1, d: 2, t: 6 },
            Inst::Const { d: 3, imm: enc(1) },
            Inst::Const { d: 4, imm: 0 },
            Inst::Bin {
                op: BinOp::Quot,
                d: 3,
                a: 3,
                b: 4,
            },
            Inst::PopHandler,
            Inst::Ret { s: 2 },
        ],
    );
    main.ptr_map[4] = false;
    let prog = CodeProgram {
        funs: vec![main, handler],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::DivideByZero);
}

#[test]
fn terminal_faults_ignore_handlers() {
    // BadProgram-class faults (here: PopHandler with none installed after
    // the handler already fired... simplest terminal fault: bad memory
    // access) must not be deliverable to Scheme handlers.
    let r = registry_with_conditions();
    let enc = |n: i64| r.reg.encode_immediate(r.fx, n);
    let handler = fun(
        "handler",
        1,
        3,
        vec![Inst::Const { d: 2, imm: enc(7) }, Inst::Ret { s: 2 }],
    );
    let main = fun(
        "main",
        0,
        4,
        vec![
            Inst::MakeClosure {
                d: 1,
                f: 1,
                free: vec![],
            },
            Inst::PushHandler { h: 1, d: 2, t: 5 },
            Inst::Const { d: 3, imm: enc(1) },
            Inst::LoadD {
                d: 3,
                p: 3,
                disp: 1 << 20,
            }, // wild load: BadMemoryAccess
            Inst::PopHandler,
            Inst::Ret { s: 2 },
        ],
    );
    let prog = CodeProgram {
        funs: vec![main, handler],
        main: 0,
        pool: vec![],
        nglobals: 0,
        global_names: vec![],
        registry: r.reg,
    };
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    assert_eq!(m.run().unwrap_err().kind, VmErrorKind::BadMemoryAccess);
}
