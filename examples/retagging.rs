//! Representation policy is library code: swap in a different tagging
//! scheme (different fixnum shift, permuted pointer tags) and nothing else
//! changes — not the compiler, not the GC, not the programs.
//!
//! Run with: `cargo run --example retagging`

use sxr::{Compiler, PipelineConfig, LIBRARY_SCM, PRIMS_ABSTRACT_SCM, REPS_SCM};

/// Same roles, different numbers everywhere: fixnums shifted by 4,
/// pointer tags permuted, immediates sub-tagged differently.
const ALT_REPS: &str = r#"
(define fixnum-rep      (%make-immediate-type 'fixnum 3 0 4))
(define boolean-rep     (%make-immediate-type 'boolean 9 2 9))
(define char-rep        (%make-immediate-type 'char 9 10 9))
(define null-rep        (%make-immediate-type 'null 9 18 9))
(define unspecified-rep (%make-immediate-type 'unspecified 9 26 9))
(define eof-rep         (%make-immediate-type 'eof 9 34 9))
(define string-rep      (%make-pointer-type 'string 1 #f))
(define symbol-rep      (%make-pointer-type 'symbol 3 #f))
(define rep-type-rep    (%make-pointer-type 'rep-type 4 #t))
(define box-rep         (%make-pointer-type 'box 4 #t))
(define pair-rep        (%make-pointer-type 'pair 5 #f))
(define vector-rep      (%make-pointer-type 'vector 6 #f))
(define closure-rep     (%make-pointer-type 'closure 7 #f))
(%provide-rep! 'fixnum fixnum-rep)
(%provide-rep! 'boolean boolean-rep)
(%provide-rep! 'char char-rep)
(%provide-rep! 'null null-rep)
(%provide-rep! 'unspecified unspecified-rep)
(%provide-rep! 'eof eof-rep)
(%provide-rep! 'pair pair-rep)
(%provide-rep! 'vector vector-rep)
(%provide-rep! 'rep-type rep-type-rep)
(%provide-rep! 'box box-rep)
(%provide-rep! 'string string-rep)
(%provide-rep! 'symbol symbol-rep)
(%provide-rep! 'closure closure-rep)
"#;

const PROGRAM: &str = r#"
  (define (fib n) (if (fx< n 2) n (fx+ (fib (fx- n 1)) (fib (fx- n 2)))))
  (display (list3 (fib 15) '(a . b) "strings too"))
"#;

fn main() {
    let compiler = Compiler::new(PipelineConfig::abstract_optimized());

    let standard = compiler.compile(PROGRAM).expect("standard compiles");
    let alt = compiler
        .compile_with_prelude(&[ALT_REPS, PRIMS_ABSTRACT_SCM, LIBRARY_SCM], PROGRAM)
        .expect("alternative compiles");

    let so = standard.run().expect("standard runs");
    let ao = alt.run().expect("alternative runs");
    println!("standard tagging   : {}", so.output);
    println!("alternative tagging: {}", ao.output);
    assert_eq!(so.output, ao.output);

    println!("\nthe words differ (library policy), the behaviour doesn't:");
    for (name, c) in [("standard", &standard), ("alternative", &alt)] {
        let reg = &c.registry;
        let fx = reg.role("fixnum").unwrap();
        let pair = reg.role("pair").unwrap();
        println!(
            "  {name:12} fixnum 3 encodes as {:4}; pair tag is {}",
            reg.encode_immediate(fx, 3),
            reg.info(pair).tag(),
        );
    }

    println!("\nfib under each scheme (note the different immediates):");
    println!("{}", standard.disassemble("fib").unwrap());
    println!("{}", alt.disassemble("fib").unwrap());
    let _ = REPS_SCM; // the default policy ships as a library file too
}
