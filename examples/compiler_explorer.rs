//! A compiler explorer for the reproduction: show, side by side, what each
//! pipeline configuration makes of a primitive or a snippet.
//!
//! Usage:
//!   cargo run --example compiler_explorer                 # defaults to car
//!   cargo run --example compiler_explorer -- fx+          # a primitive
//!   cargo run --example compiler_explorer -- my-fn '(define (my-fn x) (car (cdr x)))'

use sxr::{Compiler, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args
        .first()
        .map(String::as_str)
        .unwrap_or("car")
        .to_string();
    let source = args.get(1).cloned().unwrap_or_else(|| "0".to_string());

    for (label, cfg) in [
        (
            "Traditional (hand-written intrinsic expansion)",
            PipelineConfig::traditional(),
        ),
        (
            "AbstractOpt (library code + general optimizer)",
            PipelineConfig::abstract_optimized(),
        ),
        (
            "AbstractNoOpt (library code, optimizer off)",
            PipelineConfig::abstract_unoptimized(),
        ),
    ] {
        let compiled = Compiler::new(cfg).compile(&source).expect("compiles");
        println!("==== {label}");
        match compiled.disassemble(&name) {
            Some(text) => println!("{text}"),
            None => println!("  (no procedure named `{name}`)\n"),
        }
    }

    let compiled = Compiler::new(PipelineConfig::abstract_optimized())
        .compile(&source)
        .expect("compiles");
    let r = &compiled.opt_report;
    println!(
        "optimizer report: {} rounds, {} inlines, {} algebraic rewrites, {} CSE hits, {} cleanups",
        r.rounds, r.inlined, r.bit_rewrites, r.cse_hits, r.cleaned
    );
}
