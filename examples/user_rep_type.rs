//! First-class representation types are for *users*, not just the library:
//! define a brand-new data type (2-D points), give it a representation, and
//! watch the same generally-useful optimizations compile its accessors down
//! to single loads — exactly like the built-in pairs.
//!
//! Run with: `cargo run --example user_rep_type`

use sxr::{Compiler, PipelineConfig};

const POINTS: &str = r#"
  ;; A user-defined data type, declared exactly the way the library
  ;; declares pairs: tag 4 is the shared record tag, discriminated by
  ;; header type id.
  (define point-rep (%make-pointer-type 'point 4 #t))

  (define (make-point x y)
    (let ((p (%rep-alloc point-rep (%rep-project fixnum-rep 2) x)))
      (%rep-set! point-rep p (%rep-project fixnum-rep 1) y)
      p))
  (define (point-x p) (%rep-ref point-rep p (%rep-project fixnum-rep 0)))
  (define (point-y p) (%rep-ref point-rep p (%rep-project fixnum-rep 1)))
  (define (point? x) (%rep-inject boolean-rep (%rep-test point-rep x)))

  (define (point-add a b)
    (make-point (fx+ (point-x a) (point-x b))
                (fx+ (point-y a) (point-y b))))

  (define p (point-add (make-point 1 2) (make-point 30 40)))
  (display (list2 (point-x p) (point-y p)))
  (newline)
  (display (list2 (point? p) (point? 42)))
  (newline)
"#;

fn main() {
    let compiled = Compiler::new(PipelineConfig::abstract_optimized())
        .compile(POINTS)
        .expect("compiles");
    let outcome = compiled.run().expect("runs");
    print!("{}", outcome.output);

    println!("\npoint-x under the optimizing pipeline (a single tagged load):");
    println!("{}", compiled.disassemble("point-x").unwrap());

    let naive = Compiler::new(PipelineConfig::abstract_unoptimized())
        .compile(POINTS)
        .expect("compiles");
    println!("point-x with the optimizer off (generic dispatch):");
    println!("{}", naive.disassemble("point-x").unwrap());

    println!(
        "static size: {} instructions optimized vs {} generic",
        compiled.static_count("point-x").unwrap(),
        naive.static_count("point-x").unwrap()
    );
}
