;;; A tiny meta-circular evaluator — Scheme interpreting (a subset of)
;;; Scheme, on a Scheme system whose own data types are library code.
;;; Run with: cargo run --bin sxr -- examples/scheme/metacircular.scm

(define (lookup env x)
  (cond ((null? env) (error x))
        ((eq? (caar env) x) (cdar env))
        (else (lookup (cdr env) x))))

(define (ev e env)
  (cond ((fixnum? e) e)
        ((symbol? e) (lookup env e))
        ((eq? (car e) 'quote) (cadr e))
        ((eq? (car e) 'if)
         (if (ev (cadr e) env) (ev (caddr e) env) (ev (cadr (cddr e)) env)))
        ((eq? (car e) 'lambda)
         ;; (lambda (x) body) -> host closure
         (lambda (arg) (ev (caddr e) (cons (cons (car (cadr e)) arg) env))))
        (else
         ;; application (one argument, like the lambda calculus intends)
         (let ((f (ev (car e) env)))
           (if (procedure? f)
               (f (ev (cadr e) env))
               (error 'not-a-procedure))))))

(define base-env
  (list (cons 'add1 add1)
        (cons 'sub1 sub1)
        (cons 'zero? zero?)))

(define prog
  '(((lambda (f) (lambda (n) ((f f) n)))
     (lambda (self)
       (lambda (n)
         (if (zero? n) 0 (add1 ((self self) (sub1 n)))))))
    7))

(display "Y-combinator identity on 7 = ")
(display (ev prog base-env))
(newline)
