;;; Word frequency over a string, association-list style. Run with:
;;;   cargo run --bin sxr -- examples/scheme/wordfreq.scm

(define text "the quick brown fox jumps over the lazy dog the fox")

(define (split-words s)
  (let ((n (string-length s)))
    (let loop ((i 0) (start 0) (acc '()))
      (cond ((fx= i n)
             (reverse (if (fx< start i) (cons (substring s start i) acc) acc)))
            ((char=? (string-ref s i) #\space)
             (loop (fx+ i 1) (fx+ i 1)
                   (if (fx< start i) (cons (substring s start i) acc) acc)))
            (else (loop (fx+ i 1) start acc))))))

(define (bump table word)
  (let ((hit (assoc word table)))
    (if hit
        (begin (set-cdr! hit (fx+ (cdr hit) 1)) table)
        (cons (cons word 1) table))))

(define (frequencies words) (fold-left bump '() words))

(for-each
 (lambda (entry)
   (display (car entry)) (display ": ") (display (cdr entry)) (newline))
 (reverse (frequencies (split-words text))))
