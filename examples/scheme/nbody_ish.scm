;;; A little physics-flavoured workload: integrate a bouncing particle with
;;; records for state. Run with:
;;;   cargo run --bin sxr -- examples/scheme/nbody_ish.scm

(define-record-type particle
  (make-particle x v)
  particle?
  (x particle-x set-particle-x!)
  (v particle-v set-particle-v!))

(define (step! p)
  ;; integer physics: gravity -1 per tick, elastic floor at 0
  (set-particle-v! p (fx- (particle-v p) 1))
  (set-particle-x! p (fx+ (particle-x p) (particle-v p)))
  (when (fx< (particle-x p) 0)
    (set-particle-x! p (fx- 0 (particle-x p)))
    (set-particle-v! p (fx- 0 (particle-v p)))))

(define (simulate ticks)
  (let ((p (make-particle 100 0)))
    (do ((i 0 (fx+ i 1))) ((fx= i ticks) p)
      (step! p))))

(let ((p (simulate 1000)))
  (display "after 1000 ticks: x=")
  (display (particle-x p))
  (display " v=")
  (display (particle-v p))
  (newline))
