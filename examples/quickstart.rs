//! Quickstart: compile and run a Scheme program under the paper's system.
//!
//! Run with: `cargo run --example quickstart`

use sxr::{Compiler, PipelineConfig};

fn main() {
    // The paper's configuration: primitives are ordinary library code over
    // first-class representation types, compiled with the general-purpose
    // optimizer.
    let compiler = Compiler::new(PipelineConfig::abstract_optimized());

    let program = r#"
        (define (fact n)
          (if (fx= n 0) 1 (fx* n (fact (fx- n 1)))))

        (display "10! = ")
        (display (fact 10))
        (newline)

        (display (map (lambda (x) (fx* x x)) (iota 8)))
        (newline)
    "#;

    let compiled = compiler.compile(program).expect("compiles");
    let outcome = compiled.run().expect("runs");

    print!("{}", outcome.output);
    println!("-- final value: {}", outcome.value);
    println!("-- executed: {}", outcome.counters.summary());
    println!(
        "-- optimizer: {} call sites inlined, {} algebraic rewrites",
        compiled.opt_report.inlined, compiled.opt_report.bit_rewrites
    );

    // The same program, without the optimizer: the abstraction's raw cost.
    let naive = Compiler::new(PipelineConfig::abstract_unoptimized())
        .compile(program)
        .expect("compiles")
        .run()
        .expect("runs");
    println!(
        "-- without the optimizer the same program takes {:.1}x the instructions",
        naive.counters.total as f64 / outcome.counters.total as f64
    );
}
